"""CLI surface: parser, query flow, experiment runner."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.data.loaders import dataset_to_csv, load_athletes


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_args(self):
        args = build_parser().parse_args(
            ["query", "data.csv", "--row", "1", "--row", "2", "--k", "7"]
        )
        assert args.row == [1, 2]
        assert args.k == 7

    def test_experiment_validates_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "e99"])


class TestCommands:
    def test_demo_runs_all_three_scenarios(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "athlete" in out
        assert "medical" in out
        # Every scenario must actually flag its planted subjects.
        assert out.count("is an outlier in") >= 7

    def test_experiment_e0(self, capsys):
        assert main(["experiment", "e0"]) == 0
        out = capsys.readouterr().out
        assert "Saving factors" in out

    def test_experiment_save(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["experiment", "e0", "--save"]) == 0
        assert (tmp_path / "results" / "e0.json").exists()

    def test_query_roundtrip(self, tmp_path, capsys):
        dataset = load_athletes(n=60)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        code = main(
            [
                "query",
                str(path),
                "--row", "0",
                "--k", "4",
                "--sample-size", "2",
                "--normalize",
                "--quantile", "0.98",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "row 0:" in out
        assert "outlier" in out

    def test_query_reports_library_errors(self, tmp_path, capsys):
        dataset = load_athletes(n=30)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        code = main(["query", str(path), "--row", "0", "--k", "500"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_query_with_profile(self, tmp_path, capsys):
        dataset = load_athletes(n=60)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        code = main(
            ["query", str(path), "--row", "0", "--k", "4",
             "--sample-size", "2", "--normalize", "--profile"]
        )
        assert code == 0
        assert "OD profile" in capsys.readouterr().out

    def test_detect_lists_outliers_strongest_first(self, tmp_path, capsys):
        dataset = load_athletes(n=80)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        code = main(
            ["detect", str(path), "--k", "4", "--sample-size", "2",
             "--normalize", "--quantile", "0.97", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "outlier(s) among 80 rows" in out
        assert "row 0:" in out or "row 1:" in out or "row 2:" in out

    def test_batch_rows_and_queries(self, tmp_path, capsys):
        dataset = load_athletes(n=60)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        queries = tmp_path / "queries.csv"
        queries.write_text(dataset_to_csv(dataset))
        code = main(
            ["batch", str(path), "--rows", "0,1,2", "--queries", str(queries),
             "--k", "4", "--sample-size", "2", "--normalize",
             "--quantile", "0.97", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "63 queries" in out
        assert "shared-cache hits" in out

    def test_batch_all_rows_with_workers(self, tmp_path, capsys):
        dataset = load_athletes(n=40)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        code = main(
            ["batch", str(path), "--all-rows", "--workers", "2",
             "--k", "4", "--sample-size", "2", "--quantile", "0.97"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "40 queries" in out and "workers=2" in out

    def test_batch_requires_targets(self, tmp_path, capsys):
        dataset = load_athletes(n=30)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        assert main(["batch", str(path)]) == 2
        assert "nothing to query" in capsys.readouterr().err

    def test_batch_rejects_mismatched_query_csv(self, tmp_path, capsys):
        dataset = load_athletes(n=30)
        path = tmp_path / "athletes.csv"
        path.write_text(dataset_to_csv(dataset))
        queries = tmp_path / "queries.csv"
        queries.write_text("a,b\n1.0,2.0\n")
        assert main(["batch", str(path), "--queries", str(queries)]) == 2
        assert "columns" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("e0", "e11", "e12", "e13", "e14", "e15", "f1"):
            assert name in out
        assert "[gated: f32_speedup,fused_speedup,speedup]" in out  # e13's gate
        assert "[gated: peak_blocked_mb]" in out  # e14's gate
        # e15's gate: the warm-pool ratio plus the deterministic wire counters
        assert "[gated: bytes_shipped,persist_speedup,round_trips]" in out

    def test_bench_requires_name(self, capsys):
        assert main(["bench"]) == 2
        assert "spec name" in capsys.readouterr().err

    def test_bench_validates_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "e99"])

    def test_bench_out_needs_single_spec(self, capsys):
        assert main(["bench", "all", "--out", "x.json"]) == 2
        assert "single spec" in capsys.readouterr().err

    def test_bench_run_saves_canonical_snapshot(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "e0"]) == 0
        out = capsys.readouterr().out
        assert "Saving factors" in out and "saved" in out
        snapshot = (tmp_path / "BENCH_e0.json").read_text()
        assert '"experiment": "e0"' in snapshot

    def test_bench_no_save(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "e0", "--no-save"]) == 0
        assert not (tmp_path / "BENCH_e0.json").exists()

    def test_bench_check_passes_against_fresh_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "e0"]) == 0
        # e0 is deterministic, so a re-run can never regress.
        assert main(["bench", "e0", "--check", "--no-save"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_bench_check_missing_baseline_errors(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "e0", "--check", "--no-save"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_check_out_may_overwrite_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "BENCH_e0.json"
        assert main(["bench", "e0"]) == 0
        before = baseline.read_text()
        code = main(
            ["bench", "e0", "--check",
             "--baseline", str(baseline), "--out", str(baseline)]
        )
        assert code == 0  # compared against the pre-overwrite contents
        assert "PASS" in capsys.readouterr().out
        assert baseline.exists() and baseline.read_text() != before  # timestamp


class TestSearchBudget:
    def test_budget_raises_loudly(self):
        import numpy as np

        from repro.core.exceptions import SearchBudgetExceeded
        from repro.core.od import ODEvaluator
        from repro.core.priors import PruningPriors
        from repro.core.search import DynamicSubspaceSearch
        from repro.index.linear import LinearScanIndex

        generator = np.random.default_rng(0)
        X = generator.normal(size=(60, 6))
        X[0] += 4.0  # force a non-trivial search
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 3, exclude=0)
        search = DynamicSubspaceSearch(
            evaluator, 5.0, PruningPriors.uniform(6), max_evaluations=2
        )
        with pytest.raises(SearchBudgetExceeded):
            search.run()

    def test_generous_budget_unchanged_answer(self):
        import numpy as np

        from repro.core.od import ODEvaluator
        from repro.core.priors import PruningPriors
        from repro.core.search import DynamicSubspaceSearch
        from repro.index.linear import LinearScanIndex

        generator = np.random.default_rng(1)
        X = generator.normal(size=(60, 5))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 3, exclude=0)
        free = DynamicSubspaceSearch(
            evaluator, 4.0, PruningPriors.uniform(5)
        ).run()
        budgeted = DynamicSubspaceSearch(
            evaluator, 4.0, PruningPriors.uniform(5), max_evaluations=1000
        ).run()
        assert set(free.outlying_masks) == set(budgeted.outlying_masks)

    def test_budget_validated(self):
        import numpy as np

        from repro.core.exceptions import ConfigurationError
        from repro.core.od import ODEvaluator
        from repro.core.priors import PruningPriors
        from repro.core.search import DynamicSubspaceSearch
        from repro.index.linear import LinearScanIndex

        X = np.zeros((10, 3))
        evaluator = ODEvaluator(LinearScanIndex(X), X[0], 2, exclude=0)
        with pytest.raises(ConfigurationError):
            DynamicSubspaceSearch(
                evaluator, 1.0, PruningPriors.uniform(3), max_evaluations=0
            )

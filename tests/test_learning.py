"""Sample-based learning: exact fractions, conventions, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.naive_search import exhaustive_search
from repro.core.exceptions import ConfigurationError
from repro.core.learning import learn_priors
from repro.core.od import ODEvaluator
from repro.index.linear import LinearScanIndex


@pytest.fixture(scope="module")
def problem():
    generator = np.random.default_rng(3)
    X = generator.normal(size=(80, 4))
    X[:5, :2] += 6.0  # a small dense anomaly group so fractions vary
    return X, LinearScanIndex(X)


class TestLearnPriors:
    def test_fractions_match_exhaustive_truth(self, problem):
        """The learning pass's per-sample fractions must equal the
        exhaustive per-level outlying fractions — pruning is lossless, so
        learning on the pruned search loses nothing."""
        X, backend = problem
        threshold = 8.0
        report = learn_priors(backend, X, 3, threshold, sample_size=6, seed=42)
        for row, fractions in zip(report.sample_rows, report.per_sample_fractions):
            evaluator = ODEvaluator(backend, X[row], 3, exclude=row)
            oracle = exhaustive_search(evaluator, threshold)
            for m in range(1, 5):
                assert fractions[m] == pytest.approx(
                    oracle.lattice.level_outlying_fraction(m)
                )

    def test_structural_zeros(self, problem):
        X, backend = problem
        report = learn_priors(backend, X, 3, 5.0, sample_size=5, seed=1)
        assert report.priors.p_down[1] == 0.0
        assert report.priors.p_up[4] == 0.0

    def test_averaging(self, problem):
        X, backend = problem
        report = learn_priors(backend, X, 3, 5.0, sample_size=4, seed=9)
        stacked = np.vstack(report.per_sample_fractions)
        for m in range(2, 4):  # interior levels: plain averages
            assert report.priors.p_up[m] == pytest.approx(stacked[:, m].mean())
            assert report.priors.p_down[m] == pytest.approx(1 - stacked[:, m].mean())

    def test_sample_size_zero_returns_uniform(self, problem):
        X, backend = problem
        report = learn_priors(backend, X, 3, 5.0, sample_size=0)
        assert report.sample_rows == []
        assert report.priors.at(2) == (0.5, 0.5)
        assert report.total_od_evaluations == 0

    def test_deterministic_under_seed(self, problem):
        X, backend = problem
        a = learn_priors(backend, X, 3, 5.0, sample_size=5, seed=7)
        b = learn_priors(backend, X, 3, 5.0, sample_size=5, seed=7)
        assert a.sample_rows == b.sample_rows
        np.testing.assert_array_equal(a.priors.p_up, b.priors.p_up)

    def test_adaptive_does_not_change_learned_fractions(self, problem):
        X, backend = problem
        plain = learn_priors(backend, X, 3, 5.0, sample_size=5, seed=7)
        adaptive = learn_priors(
            backend, X, 3, 5.0, sample_size=5, seed=7, adaptive=True
        )
        np.testing.assert_allclose(plain.priors.p_up, adaptive.priors.p_up)

    def test_rejects_negative_sample_size(self, problem):
        X, backend = problem
        with pytest.raises(ConfigurationError):
            learn_priors(backend, X, 3, 5.0, sample_size=-1)

    def test_rejects_oversized_sample(self, problem):
        X, backend = problem
        with pytest.raises(ConfigurationError):
            learn_priors(backend, X, 3, 5.0, sample_size=10_000)

    def test_rejects_mismatched_matrix(self, problem):
        X, backend = problem
        with pytest.raises(ConfigurationError):
            learn_priors(backend, X[:10], 3, 5.0, sample_size=2)

    def test_report_bookkeeping(self, problem):
        X, backend = problem
        report = learn_priors(backend, X, 3, 5.0, sample_size=5, seed=3)
        assert len(report.per_sample_stats) == 5
        assert report.total_od_evaluations == sum(
            s.od_evaluations for s in report.per_sample_stats
        )
        assert report.wall_time_s > 0

"""E12 — batched multi-query throughput versus the sequential loop.

The batched engine answers the same queries as a sequential
``query_row``/``query_point`` loop — element-wise identical results —
but vectorises the kNN distance kernels across concurrent searches and
replays shared OD values from the per-fit cache. This benchmark
measures the end-to-end effect on a traffic-shaped workload: a mix of
dataset rows and external points with the repetition every real query
stream has (hot points recur).

``python benchmarks/bench_e12_batch_throughput.py`` prints the full
queries/sec table; ``--fast`` runs a reduced grid suitable for CI smoke
jobs. The pytest-benchmark twins time the two paths on a small fixed
batch for regression tracking.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.bench.workloads import SEED, planted_workload, standard_miner


def make_traffic(workload, m: int, hot_fraction: float = 0.3):
    """A traffic-shaped target list: rows, external points, repeats.

    Production query streams are Zipf-heavy — a small set of hot points
    accounts for a disproportionate share of requests. Here roughly
    ``hot_fraction`` of the batch re-queries a small hot set (rows and
    external points alike), the planted outliers are queried (the
    expensive searches real monitoring traffic cares about), and the
    rest are unique rows and fresh external points near the manifold.
    """
    X = workload.dataset.X
    n, d = X.shape
    rng = np.random.default_rng(SEED + 4242)
    targets: list = list(workload.query_rows)

    hot_rows = [int(row) for row in rng.choice(n, size=4, replace=False)]
    hot_points = list(
        X[rng.choice(n, size=4, replace=False)]
        + rng.normal(scale=0.05, size=(4, d))
    )
    # The planted outliers belong in the hot set: monitoring traffic
    # re-polls exactly the entities it has flagged, and those are the
    # expensive (eval-heavy) searches.
    hot_pool = list(workload.query_rows) + hot_rows + hot_points
    while len(targets) < m:
        draw = rng.random()
        if draw < hot_fraction:
            targets.append(hot_pool[int(rng.integers(len(hot_pool)))])
        elif draw < 0.5 + hot_fraction / 2:
            targets.append(int(rng.integers(n)))
        else:
            base = X[int(rng.integers(n))] + rng.normal(scale=0.05, size=d)
            targets.append(base)
    return targets[:m]


def run_comparison(n: int, d: int, m: int, workers: int = 2) -> dict:
    """Time sequential vs batched vs multiprocess on one workload.

    ``threshold_quantile=0.9`` keeps a meaningful share of the batch in
    the eval-heavy regime (searches that actually walk the lattice) —
    with an ultra-tight threshold nearly every query resolves in one
    full-space evaluation and every implementation is bound by the same
    per-query bookkeeping.
    """
    workload = planted_workload(n=n, d=d, seed_offset=12)
    miner = standard_miner(workload, threshold_quantile=0.9)
    targets = make_traffic(workload, m)

    start = time.perf_counter()
    sequential = [miner.query(target) for target in targets]
    sequential_s = time.perf_counter() - start

    batch = miner.query_batch(targets)

    # A fresh fit for the workers run so its cache starts equally warm.
    miner_mp = standard_miner(workload, threshold_quantile=0.9)
    start = time.perf_counter()
    miner_mp.query_batch(targets, workers=workers)
    workers_s = time.perf_counter() - start

    assert all(
        a.minimal == b.minimal and a.total_outlying == b.total_outlying
        for a, b in zip(sequential, batch.results)
    ), "batched answers diverged from the sequential loop"

    return {
        "n": n,
        "d": d,
        "m": m,
        "seq_qps": m / sequential_s,
        "batch_qps": batch.queries_per_second,
        "speedup": sequential_s / batch.wall_time_s,
        "workers_qps": m / workers_s,
        "cache_hits": batch.shared_cache_hits,
        "knn_evals": batch.knn_evaluations,
    }


# ----------------------------------------------------------------------
# pytest-benchmark twins (small fixed batch, regression tracking)
# ----------------------------------------------------------------------
def _small_setup():
    workload = planted_workload(n=600, d=8, seed_offset=12)
    miner = standard_miner(workload, threshold_quantile=0.9)
    targets = make_traffic(workload, 64)
    return miner, targets


def test_benchmark_sequential_loop(benchmark):
    """Time 64 traffic-shaped queries through the sequential path."""
    miner, targets = _small_setup()
    results = benchmark(lambda: [miner.query(target) for target in targets])
    assert len(results) == 64


def test_benchmark_query_batch(benchmark):
    """Time the same 64 queries through the batched engine.

    The per-fit cache is invalidated before every round so repeated
    benchmark rounds measure a cold batch, not replays of the first.
    """
    miner, targets = _small_setup()

    def run():
        miner.od_cache_.invalidate()
        return miner.query_batch(targets)

    result = benchmark(run)
    assert len(result) == 64


# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="reduced grid for CI smoke jobs"
    )
    args = parser.parse_args()

    if args.fast:
        grid = [(1000, 10, 64)]
    else:
        grid = [(1000, 10, 64), (2000, 10, 128), (5000, 12, 256)]

    header = (
        f"{'n':>6} {'d':>3} {'m':>5} {'seq q/s':>9} {'batch q/s':>10} "
        f"{'speedup':>8} {'mp q/s':>9} {'cache hits':>10} {'knn evals':>10}"
    )
    print("E12 — batched multi-query throughput (linear backend)")
    print(header)
    print("-" * len(header))
    for n, d, m in grid:
        row = run_comparison(n, d, m)
        print(
            f"{row['n']:>6} {row['d']:>3} {row['m']:>5} {row['seq_qps']:>9.1f} "
            f"{row['batch_qps']:>10.1f} {row['speedup']:>7.2f}x {row['workers_qps']:>9.1f} "
            f"{row['cache_hits']:>10} {row['knn_evals']:>10}"
        )
    print(
        "\nIdentical answers verified against the sequential loop for every row."
    )


if __name__ == "__main__":
    main()

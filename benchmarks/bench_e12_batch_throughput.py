"""E12 — batched multi-query throughput versus the sequential loop.

The batched engine answers the same queries as a sequential
``query_row``/``query_point`` loop — element-wise identical results —
but vectorises the kNN distance kernels across concurrent searches and
replays shared OD values from the per-fit cache. This benchmark
measures the end-to-end effect on a traffic-shaped workload: a mix of
dataset rows and external points with the repetition every real query
stream has (hot points recur).

The measurement lives in :data:`repro.bench.perf.E12_SPEC`; this script
is its classic entry point. ``python
benchmarks/bench_e12_batch_throughput.py`` prints the full queries/sec
table; ``--fast`` runs the CI smoke grid; ``--save [PATH]`` writes the
canonical ``BENCH_e12.json`` snapshot (the committed baseline the CI
regression gate compares against — see docs/benchmarking.md). The
pytest-benchmark twins time the two paths on a small fixed batch.
"""

from __future__ import annotations

from repro.bench.perf import E12_SPEC
from repro.bench.script import run_script
from repro.bench.workloads import small_batch_setup


# ----------------------------------------------------------------------
# pytest-benchmark twins (small fixed batch, regression tracking)
# ----------------------------------------------------------------------
def test_benchmark_sequential_loop(benchmark):
    """Time 64 traffic-shaped queries through the sequential path."""
    miner, targets = small_batch_setup()
    results = benchmark(lambda: [miner.query(target) for target in targets])
    assert len(results) == 64


def test_benchmark_query_batch(benchmark):
    """Time the same 64 queries through the batched engine.

    The per-fit cache is invalidated before every round so repeated
    benchmark rounds measure a cold batch, not replays of the first.
    """
    miner, targets = small_batch_setup()

    def run():
        miner.od_cache_.invalidate()
        return miner.query_batch(targets)

    result = benchmark(run)
    assert len(result) == 64


# ----------------------------------------------------------------------
def main() -> None:
    run_script(E12_SPEC, default_tier="full")


if __name__ == "__main__":
    main()

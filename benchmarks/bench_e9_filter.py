"""E9 — result-refinement filter (Section 3.4).

Times the minimal-antichain filter on a realistic upward-closed answer
set; ``python benchmarks/bench_e9_filter.py [--full]`` regenerates the
E9 table.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import E9_SPEC
from repro.bench.script import run_script
from repro.core.filtering import expand_upward, minimal_masks


@pytest.fixture(scope="module")
def upward_closed_answer(miner_d10, workload_d10):
    """The raw (unfiltered) answer set of a planted outlier query."""
    row = workload_d10.dataset.outlier_rows[0]
    outcome, _ = miner_d10.search_outcome(row)
    return outcome.outlying_masks


def test_benchmark_filter(benchmark, upward_closed_answer):
    minimal = benchmark(lambda: minimal_masks(upward_closed_answer))
    assert minimal
    assert len(minimal) < len(upward_closed_answer)


def test_benchmark_expand_upward(benchmark, upward_closed_answer):
    """The inverse direction: reconstructing the closure from minima."""
    minimal = minimal_masks(upward_closed_answer)
    closure = benchmark(lambda: expand_upward(minimal, 10))
    assert closure == set(upward_closed_answer)


def main() -> None:
    run_script(E9_SPEC)


if __name__ == "__main__":
    main()

"""E8 — index backends (linear scan vs R*-tree vs X-tree) on subspace kNN.

Times each backend's kNN on identical queries (clustered d=10 data plus
the X-tree's uniform high-d regime); ``python benchmarks/bench_e8_index.py
[--full]`` regenerates the E8 table.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import E8_SPEC
from repro.bench.script import run_script
from repro.index import LinearScanIndex, RStarTree, XTree


@pytest.fixture(scope="module")
def backends(workload_d10):
    X = workload_d10.dataset.X
    return {
        "linear": LinearScanIndex(X),
        "rstar": RStarTree(X, max_entries=16),
        "xtree": XTree(X, max_entries=16),
    }, X


@pytest.mark.parametrize("name", ["linear", "rstar", "xtree"])
def test_benchmark_subspace_knn(benchmark, backends, name):
    index, X = backends
    backend = index[name]
    dims = (0, 3, 6, 9)
    indices, _ = benchmark(lambda: backend.knn(X[7], 5, dims, exclude=7))
    assert len(indices) == 5


def test_benchmark_xtree_build_uniform16(benchmark, uniform_16d):
    """X-tree construction in its supernode regime (n=2000, d=16)."""
    tree = benchmark.pedantic(
        lambda: XTree(uniform_16d, max_entries=16), rounds=2, iterations=1
    )
    assert tree.size == 2000


def main() -> None:
    run_script(E8_SPEC)


if __name__ == "__main__":
    main()

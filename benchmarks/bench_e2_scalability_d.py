"""E2 — efficiency vs dimensionality d.

Times the lattice bookkeeping that dominates the search's non-kNN cost
at growing d; ``python benchmarks/bench_e2_scalability_d.py [--full]``
regenerates the E2 table (full grid: d up to 14).
"""

from __future__ import annotations

from repro.bench.experiments import E2_SPEC
from repro.bench.script import run_script
from repro.core.lattice import SubspaceLattice


def test_benchmark_lattice_construction_d14(benchmark):
    lattice = benchmark(lambda: SubspaceLattice(14))
    assert lattice.remaining_count(7) == 3432


def test_benchmark_upward_prune_cascade_d12(benchmark):
    """Worst-case upward prune: a singleton wipes out half the lattice."""

    def cascade() -> int:
        lattice = SubspaceLattice(12)
        lattice.mark_evaluated(0b1, outlying=True)
        return lattice.prune_supersets(0b1)

    assert benchmark(cascade) == 2**11 - 1


def test_benchmark_downward_prune_cascade_d12(benchmark):
    """Worst-case downward prune: the full space wipes out everything."""

    def cascade() -> int:
        lattice = SubspaceLattice(12)
        top = (1 << 12) - 1
        lattice.mark_evaluated(top, outlying=False)
        return lattice.prune_subsets(top)

    assert benchmark(cascade) == 2**12 - 2


def main() -> None:
    run_script(E2_SPEC)


if __name__ == "__main__":
    main()

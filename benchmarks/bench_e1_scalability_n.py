"""E1 — efficiency vs dataset size n (HOS-Miner vs exhaustive search).

The pytest-benchmark entry times one full HOS-Miner query (the paper's
headline operation) on the standard workload; ``python
benchmarks/bench_e1_scalability_n.py [--full]`` regenerates the E1 table
(full grid: n up to 8000).
"""

from __future__ import annotations

from repro.baselines.naive_search import exhaustive_search
from repro.bench.experiments import E1_SPEC
from repro.bench.script import run_script
from repro.core.od import ODEvaluator


def test_benchmark_hos_query(benchmark, miner_d10, workload_d10):
    """One paper-faithful HOS-Miner query on a planted outlier."""
    row = workload_d10.dataset.outlier_rows[0]
    outcome = benchmark.pedantic(
        lambda: miner_d10.search_outcome(row)[0], rounds=5, iterations=1
    )
    assert outcome.is_outlier_anywhere()


def test_benchmark_adaptive_query(benchmark, adaptive_miner_d10, workload_d10):
    """The same query under the adaptive-prior extension."""
    row = workload_d10.dataset.outlier_rows[0]
    outcome = benchmark.pedantic(
        lambda: adaptive_miner_d10.search_outcome(row)[0], rounds=5, iterations=1
    )
    assert outcome.is_outlier_anywhere()


def test_benchmark_exhaustive_query(benchmark, miner_d10, workload_d10):
    """The exhaustive oracle on the identical query — the cost ceiling."""
    row = workload_d10.dataset.outlier_rows[0]
    X = workload_d10.dataset.X

    def run():
        evaluator = ODEvaluator(miner_d10.backend_, X[row], 5, exclude=row)
        return exhaustive_search(evaluator, miner_d10.threshold_)

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.stats.od_evaluations == 1023


def main() -> None:
    run_script(E1_SPEC)


if __name__ == "__main__":
    main()

"""F1 — the Figure 1 scenario (one point, three 2-d views).

Benchmarks a single-view OD evaluation (the atom of everything HOS-Miner
does); ``python benchmarks/bench_f1_figure1.py [--full]`` prints the F1
table.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import F1_SPEC
from repro.bench.script import run_script
from repro.core.od import ODEvaluator
from repro.data.synthetic import make_figure1_data
from repro.index.linear import LinearScanIndex


@pytest.fixture(scope="module")
def figure1_evaluator():
    dataset = make_figure1_data(n=400, seed=0)
    backend = LinearScanIndex(dataset.X)
    return ODEvaluator(backend, dataset.X[0], 5, exclude=0)


def test_benchmark_single_view_od(benchmark, figure1_evaluator):
    """OD of p in one 2-d view, cache disabled by cycling masks."""
    masks = [0b000011, 0b001100, 0b110000]
    state = {"i": 0}

    def evaluate():
        state["i"] += 1
        mask = masks[state["i"] % 3]
        figure1_evaluator._cache.pop(mask, None)  # force a real evaluation
        return figure1_evaluator.od(mask)

    assert benchmark(evaluate) >= 0.0


def main() -> None:
    run_script(F1_SPEC)


if __name__ == "__main__":
    main()

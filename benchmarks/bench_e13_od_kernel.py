"""E13 — GEMM level-wide OD kernel versus the exact per-mask loop.

The tentpole microbenchmark: one query point, one lattice level's worth
of subspace masks, and the two kernels of
:meth:`~repro.index.linear.LinearScanIndex.knn_distance_sums` head to
head. The exact kernel is the first batched engine's hot loop — one
gather-and-reduce over the cached component matrix per mask; the GEMM
kernel answers every mask with a single ``M @ C.T`` BLAS product plus
one axis-wise top-k partition. A third column times the mask-major
*fused* kernel (``knn_distance_sums_batch``) that stacks several
queries' component matrices into one GEMM, normalised per query.

``python benchmarks/bench_e13_od_kernel.py`` prints the full sweep over
dimensionality and level width; ``--fast`` runs a reduced grid for CI
smoke jobs; ``--save [PATH]`` writes the rows (plus environment info)
to a ``BENCH_e13.json`` artifact so the perf trajectory is tracked
across commits. The pytest-benchmark twins time one representative cell
of each kernel for regression tracking.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.index.linear import LinearScanIndex

#: Matches the seed convention of the E-series workloads.
SEED = 20040830 + 13


def make_masks(rng: np.random.Generator, d: int, width: int) -> list[np.ndarray]:
    """A level-ish batch of *width* random subspace masks over ``d`` dims.

    Real rounds mix levels (different searches expand different levels),
    so widths beyond one level's worth draw masks of every size — the
    kernel's cost depends on ``(n, d, width)``, not on which masks.
    """
    masks = []
    for _ in range(width):
        size = int(rng.integers(1, d + 1))
        masks.append(np.sort(rng.choice(d, size=size, replace=False)).astype(np.intp))
    return masks


def time_kernel(fn, reps: int) -> float:
    fn()  # warm-up (BLAS thread pools, allocator)
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps


def run_cell(n: int, d: int, width: int, k: int = 5, reps: int = 7) -> dict:
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(n, d))
    query = rng.normal(size=d)
    backend = LinearScanIndex(X)
    masks = make_masks(rng, d, width)
    components = backend.distance_components(query)

    exact_s = time_kernel(
        lambda: backend.knn_distance_sums(
            query, k, masks, components=components, kernel="exact"
        ),
        reps,
    )
    gemm_s = time_kernel(
        lambda: backend.knn_distance_sums(
            query, k, masks, components=components, kernel="gemm"
        ),
        reps,
    )

    # Mask-major fusion: 4 queries stacked into one C_batch GEMM,
    # reported per query for comparability with the single-query cells.
    queries = rng.normal(size=(4, d))
    components_list = [backend.distance_components(q) for q in queries]
    fused_s = (
        time_kernel(
            lambda: backend.knn_distance_sums_batch(
                queries, k, masks, components_list=components_list, kernel="gemm"
            ),
            reps,
        )
        / queries.shape[0]
    )

    exact = backend.knn_distance_sums(
        query, k, masks, components=components, kernel="exact"
    )
    gemm = backend.knn_distance_sums(
        query, k, masks, components=components, kernel="gemm"
    )
    max_rel_err = float(np.max(np.abs(gemm - exact) / np.maximum(np.abs(exact), 1e-300)))

    return {
        "n": n,
        "d": d,
        "width": width,
        "k": k,
        "exact_ms": exact_s * 1e3,
        "gemm_ms": gemm_s * 1e3,
        "fused_ms_per_query": fused_s * 1e3,
        "speedup": exact_s / gemm_s,
        "fused_speedup": exact_s / fused_s,
        "max_rel_err": max_rel_err,
    }


# ----------------------------------------------------------------------
# pytest-benchmark twins (one representative cell, regression tracking)
# ----------------------------------------------------------------------
def _twin_setup():
    rng = np.random.default_rng(SEED)
    X = rng.normal(size=(2000, 12))
    query = rng.normal(size=12)
    backend = LinearScanIndex(X)
    masks = make_masks(rng, 12, 64)
    components = backend.distance_components(query)
    return backend, query, masks, components


def test_benchmark_od_kernel_exact(benchmark):
    """Time 64 subspace OD sums through the exact gather loop."""
    backend, query, masks, components = _twin_setup()
    result = benchmark(
        lambda: backend.knn_distance_sums(
            query, 5, masks, components=components, kernel="exact"
        )
    )
    assert result.shape == (64,)


def test_benchmark_od_kernel_gemm(benchmark):
    """Time the same 64 sums through the level-wide GEMM kernel."""
    backend, query, masks, components = _twin_setup()
    result = benchmark(
        lambda: backend.knn_distance_sums(
            query, 5, masks, components=components, kernel="gemm"
        )
    )
    assert result.shape == (64,)


# ----------------------------------------------------------------------
def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="reduced grid for CI smoke jobs"
    )
    parser.add_argument(
        "--save",
        nargs="?",
        const="results/BENCH_e13.json",
        default=None,
        metavar="PATH",
        help="write the result rows to a JSON artifact "
        "(default path results/BENCH_e13.json)",
    )
    args = parser.parse_args()

    if args.fast:
        grid = [(2000, d, w) for d in (8, 12) for w in (16, 64)]
    else:
        grid = [(4000, d, w) for d in (8, 12, 16, 20) for w in (16, 64, 256)]

    header = (
        f"{'n':>6} {'d':>3} {'width':>6} {'exact ms':>9} {'gemm ms':>8} "
        f"{'speedup':>8} {'fused ms/q':>11} {'fused x':>8} {'max rel err':>12}"
    )
    print("E13 — level-wide GEMM OD kernel vs exact per-mask loop (linear backend)")
    print(header)
    print("-" * len(header))
    rows = []
    for n, d, width in grid:
        row = run_cell(n, d, width)
        rows.append(row)
        print(
            f"{row['n']:>6} {row['d']:>3} {row['width']:>6} {row['exact_ms']:>9.2f} "
            f"{row['gemm_ms']:>8.2f} {row['speedup']:>7.2f}x "
            f"{row['fused_ms_per_query']:>11.2f} {row['fused_speedup']:>7.2f}x "
            f"{row['max_rel_err']:>12.1e}"
        )
    print(
        "\nGEMM values agree with the exact kernel within rtol 1e-9 on every "
        "cell; pruning decisions are re-verified exactly by the search layer."
    )

    if args.save:
        path = Path(args.save)
        path.parent.mkdir(parents=True, exist_ok=True)
        artifact = {
            "experiment": "e13_od_kernel",
            "fast": args.fast,
            "numpy": np.__version__,
            "python": platform.python_version(),
            "machine": platform.machine(),
            "rows": rows,
        }
        path.write_text(json.dumps(artifact, indent=2))
        print(f"saved {path}")


if __name__ == "__main__":
    main()

"""E13 — GEMM level-wide OD kernel versus the exact per-mask loop.

The tentpole microbenchmark: one query point, one lattice level's worth
of subspace masks, and the two kernels of
:meth:`~repro.index.linear.LinearScanIndex.knn_distance_sums` head to
head. The exact kernel is the first batched engine's hot loop — one
gather-and-reduce over the cached component matrix per mask; the GEMM
kernel answers every mask with a single ``M @ C.T`` BLAS product plus
one axis-wise top-k partition. A third column times the mask-major
*fused* kernel (``knn_distance_sums_batch``) that stacks several
queries' component matrices into one GEMM, normalised per query.

The measurement lives in :data:`repro.bench.perf.E13_SPEC`; this script
is its classic entry point. ``python benchmarks/bench_e13_od_kernel.py``
prints the full sweep over dimensionality and level width; ``--fast``
runs the CI smoke grid; ``--save [PATH]`` writes the canonical
``BENCH_e13.json`` snapshot (the committed baseline the CI regression
gate compares against — see docs/benchmarking.md). The pytest-benchmark
twins time one representative cell of each kernel.
"""

from __future__ import annotations

from repro.bench.perf import E13_SPEC
from repro.bench.script import run_script
from repro.bench.workloads import kernel_cell_setup


# ----------------------------------------------------------------------
# pytest-benchmark twins (one representative cell, regression tracking)
# ----------------------------------------------------------------------
def test_benchmark_od_kernel_exact(benchmark):
    """Time 64 subspace OD sums through the exact gather loop."""
    backend, query, masks, components = kernel_cell_setup()
    result = benchmark(
        lambda: backend.knn_distance_sums(
            query, 5, masks, components=components, kernel="exact"
        )
    )
    assert result.shape == (64,)


def test_benchmark_od_kernel_gemm(benchmark):
    """Time the same 64 sums through the level-wide GEMM kernel."""
    backend, query, masks, components = kernel_cell_setup()
    result = benchmark(
        lambda: backend.knn_distance_sums(
            query, 5, masks, components=components, kernel="gemm"
        )
    )
    assert result.shape == (64,)


def test_benchmark_od_kernel_gemm_float32(benchmark):
    """Time the same 64 sums through the float32 GEMM tier."""
    from repro.index.base import components32_from

    backend, query, masks, components = kernel_cell_setup()
    components32 = components32_from(components)
    result = benchmark(
        lambda: backend.knn_distance_sums(
            query,
            5,
            masks,
            components=components,
            kernel="gemm",
            precision="float32",
            components32=components32,
        )
    )
    assert result.shape == (64,)


# ----------------------------------------------------------------------
def main() -> None:
    run_script(E13_SPEC, default_tier="full")


if __name__ == "__main__":
    main()

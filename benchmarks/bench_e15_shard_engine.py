"""E15 — persistent sharded scatter-gather engine vs per-call spin-up.

``shard="rows"`` splits the fitted data row-wise across worker
processes that attach to ``multiprocessing.shared_memory`` segments, so
batches ship only subspace masks and query rows over the pipes — the
wire volume is independent of n. Because OD is additive over data
points, the coordinator's exact k-way merge of per-shard sorted
k-prefixes reproduces the sequential kernels bit for bit.

The persistent pool is the point: it is spawned once per fit and reused
across ``query_batch`` calls, so steady-state calls skip fork,
shared-memory attach and backend construction entirely (and keep the
worker-side component caches warm). This benchmark measures exactly
that gap — the gated ``persist_speedup`` is warm-pool vs
torn-down-before-every-call wall time — plus the deterministic wire
counters ``round_trips``/``bytes_shipped``. Raw multi-process
``scaling`` vs the in-process engine is recorded for the trajectory but
not gated: it measures the runner's core count, not the code.

The measurement lives in :data:`repro.bench.perf.E15_SPEC`; this script
is its classic entry point. ``python benchmarks/bench_e15_shard_engine.py``
prints the full table; ``--fast`` runs the CI smoke grid; ``--save
[PATH]`` writes the canonical ``BENCH_e15.json`` snapshot (the
committed baseline the CI regression gate compares against — see
docs/benchmarking.md). The pytest-benchmark twins time a warm pool
against per-call teardown on a small fixed batch.
"""

from __future__ import annotations

from repro.bench.perf import E15_SPEC
from repro.bench.script import run_script
from repro.bench.workloads import small_batch_setup


# ----------------------------------------------------------------------
# pytest-benchmark twins (small fixed batch, regression tracking)
# ----------------------------------------------------------------------
def test_benchmark_shard_pool_warm(benchmark):
    """Time 64 traffic-shaped queries through a persistent 2-shard pool.

    The pool is spun up before the first round; every round invalidates
    the per-fit cache so it measures a cold batch over a warm pool.
    """
    miner, targets = small_batch_setup()
    miner.query_batch(targets, workers=2, shard="rows")  # spin up, unmeasured

    def run():
        miner.od_cache_.invalidate()
        return miner.query_batch(targets, workers=2, shard="rows")

    result = benchmark(run)
    miner.close()
    assert len(result) == 64
    assert result.stats.shard_round_trips > 0


def test_benchmark_shard_pool_percall(benchmark):
    """Time the same batch with the pool torn down before every round,
    so each round pays fork + shared-memory attach + backend build."""
    miner, targets = small_batch_setup()

    def run():
        miner.close()
        miner.od_cache_.invalidate()
        return miner.query_batch(targets, workers=2, shard="rows")

    result = benchmark(run)
    miner.close()
    assert len(result) == 64


# ----------------------------------------------------------------------
def main() -> None:
    run_script(E15_SPEC, default_tier="full")


if __name__ == "__main__":
    main()

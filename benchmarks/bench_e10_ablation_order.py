"""E10 — search-order ablation (what TSF and learning each contribute).

Times one query under each strategy (exhaustive / fixed sweeps / TSF
variants); ``python benchmarks/bench_e10_ablation_order.py [--full]``
regenerates the E10 table.
"""

from __future__ import annotations

import pytest

from repro.baselines.naive_search import fixed_order_search
from repro.bench.experiments import E10_SPEC
from repro.bench.script import run_script
from repro.core.od import ODEvaluator
from repro.core.priors import PruningPriors
from repro.core.search import DynamicSubspaceSearch


def _evaluator(miner, workload, row):
    return ODEvaluator(miner.backend_, workload.dataset.X[row], 5, exclude=row)


@pytest.mark.parametrize("order", ["bottom_up", "top_down"])
def test_benchmark_fixed_sweeps(benchmark, miner_d10, workload_d10, order):
    row = workload_d10.dataset.outlier_rows[0]

    def run():
        return fixed_order_search(
            _evaluator(miner_d10, workload_d10, row), miner_d10.threshold_, order
        )

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.is_outlier_anywhere()


@pytest.mark.parametrize("adaptive", [False, True], ids=["learned", "adaptive"])
def test_benchmark_tsf_variants(benchmark, miner_d10, workload_d10, adaptive):
    row = workload_d10.dataset.outlier_rows[0]

    def run():
        return DynamicSubspaceSearch(
            _evaluator(miner_d10, workload_d10, row),
            miner_d10.threshold_,
            miner_d10.priors_,
            adaptive=adaptive,
        ).run()

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert outcome.is_outlier_anywhere()


def test_benchmark_tsf_uniform_inlier(benchmark, miner_d10, workload_d10):
    """The inlier fast path: uniform priors decide a clean point in one
    full-space evaluation plus a global downward prune."""
    row = workload_d10.inlier_queries[0]

    def run():
        return DynamicSubspaceSearch(
            _evaluator(miner_d10, workload_d10, row),
            miner_d10.threshold_,
            PruningPriors.uniform(10),
        ).run()

    outcome = benchmark.pedantic(run, rounds=3, iterations=1)
    assert not outcome.is_outlier_anywhere()


def main() -> None:
    run_script(E10_SPEC)


if __name__ == "__main__":
    main()

"""E3 — effect of the learning sample size S.

Times one learning pass (S sample searches with uniform priors);
``python benchmarks/bench_e3_sample_size.py [--full]`` regenerates the
E3 table (full grid: S up to 40).
"""

from __future__ import annotations

from repro.bench.experiments import E3_SPEC
from repro.bench.script import run_script
from repro.core.learning import learn_priors


def test_benchmark_learning_pass(benchmark, miner_d10, workload_d10):
    """The Section 3.2 learning pass with S=5 on the standard workload."""
    X = workload_d10.dataset.X

    def learn():
        return learn_priors(
            miner_d10.backend_, X, 5, miner_d10.threshold_, sample_size=5, seed=3
        )

    report = benchmark.pedantic(learn, rounds=3, iterations=1)
    assert len(report.sample_rows) == 5


def main() -> None:
    run_script(E3_SPEC)


if __name__ == "__main__":
    main()

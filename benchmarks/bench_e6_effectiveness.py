"""E6 — effectiveness vs the evolutionary comparator and the oracle.

Times one full effectiveness scoring of a planted point (exhaustive
oracle + recovery metrics); ``python benchmarks/bench_e6_effectiveness.py
[--full]`` regenerates the two-workload E6 table.
"""

from __future__ import annotations

from repro.baselines.naive_search import exhaustive_search
from repro.bench.experiments import E6_SPEC
from repro.bench.measures import planted_recovery
from repro.bench.script import run_script
from repro.core.filtering import minimal_masks
from repro.core.od import ODEvaluator
from repro.core.subspace import Subspace


def test_benchmark_oracle_scoring(benchmark, miner_d10, workload_d10):
    """Exhaustive oracle + filter + recovery scoring for one query."""
    row = workload_d10.dataset.outlier_rows[0]
    planted = workload_d10.dataset.true_subspaces[row]
    X = workload_d10.dataset.X

    def score():
        evaluator = ODEvaluator(miner_d10.backend_, X[row], 5, exclude=row)
        oracle = exhaustive_search(evaluator, miner_d10.threshold_)
        minimal = [Subspace(m, 10) for m in minimal_masks(oracle.outlying_masks)]
        return planted_recovery(minimal, planted)

    recovery = benchmark.pedantic(score, rounds=3, iterations=1)
    assert recovery.flagged


def main() -> None:
    run_script(E6_SPEC)


if __name__ == "__main__":
    main()

"""E14 — blocked GEMM memory ceiling (peak intermediate bytes).

The level-wide GEMM kernel's scratch product is ``(width, n)`` floats —
unbounded in ``n``. Column blocking streams it in chunks sized by
:data:`repro.index.linear.BATCH_CHUNK_BYTES` (a per-dtype *element*
budget, so the float32 tier fits twice the block width in the same
bytes), merging per-block k-smallest prefixes exactly. This experiment
pins the ceiling to a small budget, runs the kernel both ways on the
same cell, asserts the sums are bit-identical, and records both
high-water marks from the backend's ``peak_intermediate_bytes`` counter.

The measurement lives in :data:`repro.bench.perf.E14_SPEC`; this script
is its classic entry point. ``python benchmarks/bench_e14_memory_ceiling.py``
prints the full sweep; ``--fast`` runs the CI smoke grid; ``--save
[PATH]`` writes the canonical ``BENCH_e14.json`` snapshot (the committed
baseline the CI regression gate compares against — the byte counts are
deterministic, so the gate is exact). The pytest-benchmark twin times
the blocked kernel on one representative cell.
"""

from __future__ import annotations

import numpy as np

from repro.bench.perf import E14_SPEC, run_memory_cell
from repro.bench.script import run_script


# ----------------------------------------------------------------------
# pytest-benchmark twin (one representative cell, regression tracking)
# ----------------------------------------------------------------------
def test_benchmark_memory_ceiling_blocked(benchmark):
    """Time one blocked-vs-unblocked memory cell (float32 tier)."""
    row = benchmark(lambda: run_memory_cell(20000, 12, 256, "float32", chunk_mb=2))
    assert row["identical"]
    assert row["peak_blocked_mb"] <= 2.0 + 1e-9
    assert np.isfinite(row["footprint_ratio"])


# ----------------------------------------------------------------------
def main() -> None:
    run_script(E14_SPEC, default_tier="full")


if __name__ == "__main__":
    main()

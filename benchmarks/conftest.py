"""Shared fixtures for the benchmark suite.

Workloads are session-scoped so `pytest benchmarks/ --benchmark-only`
pays dataset construction and miner fitting once, and the timed bodies
measure only the operation under study. The construction itself lives
in :mod:`repro.bench.workloads` — the single source of truth shared
with the experiment specs.
"""

from __future__ import annotations

import pytest

from repro.bench import workloads


@pytest.fixture(scope="session")
def workload_d10():
    """The standard E-series workload: n=1000, d=10, planted outliers."""
    return workloads.standard_workload_d10()


@pytest.fixture(scope="session")
def miner_d10(workload_d10):
    """Paper-faithful miner (learned priors) fitted on workload_d10."""
    return workloads.standard_miner(workload_d10)


@pytest.fixture(scope="session")
def adaptive_miner_d10(workload_d10):
    """Adaptive-prior variant fitted on the same workload."""
    return workloads.standard_miner(workload_d10, adaptive=True)


@pytest.fixture(scope="session")
def uniform_16d():
    """Uniform high-d data — the X-tree supernode regime."""
    return workloads.uniform_16d()

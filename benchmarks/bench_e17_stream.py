"""E17 — incremental streaming engine vs refit-from-scratch.

A sliding-window monitoring deployment sees a gently drifting batch
stream: each cycle a fresh batch enters the window, the oldest rows
leave it, the fresh rows are queried against the fixed calibrated
threshold, and a fixed watchlist of near-manifold points is re-polled.
The incremental path (:class:`repro.core.stream.StreamEngine`) pays an
in-place index update, a delta OD-cache invalidation and a live shard
sync per cycle — after which the watchlist polls replay delta-retained
cache entries instead of recomputing them; the refit path pays a full
``HOSMiner.fit`` on the equivalent window — index build, component
caches, prior-learning sample searches — and all-cold queries, every
single batch.

This benchmark measures exactly that gap. The gated ``stream_speedup``
is refit vs incremental wall time over the same stream, and the gated
``identity`` (1.0) asserts every streamed answer element-wise identical
(``minimal``, ``total_outlying``, ``od_values``) to a fresh fit on the
equivalent window with the same explicit threshold — the differential
contract ``tests/test_stream.py`` pins. The delta-cache
``cache_retained``/``cache_evicted`` counters are recorded for the
trajectory.

The measurement lives in :data:`repro.bench.perf.E17_SPEC`; this script
is its classic entry point. ``python benchmarks/bench_e17_stream.py``
prints the full table (including a workers=2 cell exercising live
shard-pool sync); ``--fast`` runs the CI smoke grid; ``--save [PATH]``
writes the canonical ``BENCH_e17.json`` snapshot (the committed
baseline the CI regression gate compares against — see
docs/benchmarking.md). The pytest-benchmark twins time one
push-and-query cycle against one refit-and-query cycle on a small
fixed window.
"""

from __future__ import annotations

import numpy as np

from repro.bench.perf import E17_SPEC
from repro.bench.script import run_script
from repro.bench.workloads import stream_setup
from repro.core.miner import HOSMiner
from repro.core.stream import StreamEngine


# ----------------------------------------------------------------------
# pytest-benchmark twins (small fixed window, regression tracking)
# ----------------------------------------------------------------------
def test_benchmark_stream_push_query(benchmark):
    """Time one incremental cycle: push an 8-row batch through a 400-row
    sliding window, query the fresh rows, re-poll the watchlist.

    The same batch cycles in and out of the window every round, so each
    measured round does the full incremental work — insert, expiry,
    delta cache invalidation — at constant occupancy, with the
    watchlist polls replaying retained cache entries.
    """
    miner, batches, watchlist = stream_setup()
    engine = StreamEngine(miner)
    rows = batches[0]

    def run():
        engine.push(rows)
        fresh = list(range(engine.occupancy - rows.shape[0], engine.occupancy))
        return engine.query_batch(fresh), engine.query_batch(watchlist)

    fresh_result, polled = benchmark(run)
    engine.close()
    assert len(fresh_result) == rows.shape[0]
    assert len(polled) == len(watchlist)
    assert engine.occupancy == engine.window


def test_benchmark_stream_refit(benchmark):
    """Time the refit alternative for the same cycle: a fresh fit on the
    equivalent window, then the same (all-cold) queries."""
    miner, batches, watchlist = stream_setup()
    threshold = float(miner.threshold_)
    frame = np.vstack([miner.backend_.data, batches[0]])[-miner.config.stream_window :]
    fresh = list(range(frame.shape[0] - batches[0].shape[0], frame.shape[0]))

    def run():
        oracle = HOSMiner(k=5, sample_size=10, threshold=threshold)
        oracle.fit(frame)
        return oracle.query_batch(fresh), oracle.query_batch(watchlist)

    fresh_result, polled = benchmark(run)
    assert len(fresh_result) == batches[0].shape[0]
    assert len(polled) == len(watchlist)


# ----------------------------------------------------------------------
def main() -> None:
    run_script(E17_SPEC, default_tier="full")


if __name__ == "__main__":
    main()

"""E11 — X-tree max_overlap ablation (design-choice study).

Times X-tree construction at the ablation's extreme settings; ``python
benchmarks/bench_e11_xtree_overlap.py [--full]`` regenerates the E11
table.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import E11_SPEC
from repro.bench.script import run_script
from repro.index.xtree import XTree


@pytest.mark.parametrize("max_overlap", [0.0, 0.2, 1.0])
def test_benchmark_xtree_build_by_overlap(benchmark, uniform_16d, max_overlap):
    X = uniform_16d[:1000]
    tree = benchmark.pedantic(
        lambda: XTree(X, max_entries=8, max_overlap=max_overlap),
        rounds=2,
        iterations=1,
    )
    assert tree.size == 1000


def main() -> None:
    run_script(E11_SPEC)


if __name__ == "__main__":
    main()

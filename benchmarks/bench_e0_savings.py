"""E0 — saving factors (Definitions 1-3) and the paper's worked examples.

Benchmarks the TSF computation (the per-step scheduling cost of the
dynamic search); ``python benchmarks/bench_e0_savings.py`` prints the
full E0 table.
"""

from __future__ import annotations

from repro.bench.experiments import E0_SPEC
from repro.bench.script import run_script
from repro.core.savings import (
    TSFInputs,
    downward_saving_factor,
    total_saving_factor,
    upward_saving_factor,
    workload_above,
    workload_below,
)


def test_benchmark_tsf_evaluation(benchmark):
    """Time one full TSF sweep over every level of a d=16 space — the
    exact computation `_select_level` performs per search step."""
    d = 16

    def sweep() -> float:
        total = 0.0
        for m in range(1, d + 1):
            total += total_saving_factor(
                TSFInputs(
                    m=m,
                    d=d,
                    p_up=0.4,
                    p_down=0.6,
                    remaining_below=workload_below(m, d),
                    remaining_above=workload_above(m, d),
                )
            )
        return total

    result = benchmark(sweep)
    assert result > 0


def test_benchmark_saving_factor_tables(benchmark):
    """Time the (cached) DSF/USF lookups across a realistic level range."""

    def lookups():
        return sum(
            downward_saving_factor(m) + upward_saving_factor(m, 18)
            for m in range(1, 19)
        )

    assert benchmark(lookups) > 0


def main() -> None:
    run_script(E0_SPEC)


if __name__ == "__main__":
    main()

"""E7 — efficiency vs the evolutionary comparator.

Times one GA generation-equivalent (population fitness sweep) against
one HOS-Miner query; ``python benchmarks/bench_e7_vs_evolutionary.py
[--full]`` regenerates the E7 table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.evolutionary import EvolutionarySubspaceSearch
from repro.baselines.grid import EquiDepthGrid
from repro.bench.experiments import E7_SPEC
from repro.bench.script import run_script


@pytest.fixture(scope="module")
def ga_population(workload_d10):
    X = workload_d10.dataset.X
    grid = EquiDepthGrid(X, phi=4)
    search = EvolutionarySubspaceSearch(phi=4, target_dims=2, population=40)
    rng = np.random.default_rng(0)
    population = [search._random_solution(rng, grid.d) for _ in range(40)]
    return search, grid, population


def test_benchmark_ga_fitness_sweep(benchmark, ga_population):
    """One generation's fitness evaluations (40 cube counts)."""
    search, grid, population = ga_population

    def sweep():
        return [search._fitness(grid, solution) for solution in population]

    values = benchmark(sweep)
    assert len(values) == 40


def test_benchmark_grid_build(benchmark, workload_d10):
    X = workload_d10.dataset.X
    grid = benchmark(lambda: EquiDepthGrid(X, phi=5))
    assert grid.phi == 5


def main() -> None:
    run_script(E7_SPEC)


if __name__ == "__main__":
    main()

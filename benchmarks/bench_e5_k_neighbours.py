"""E5 — effect of the neighbour count k.

Times the OD kNN kernel at several k; ``python
benchmarks/bench_e5_k_neighbours.py [--full]`` regenerates the E5 table
(full grid: k up to 20).
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import E5_SPEC
from repro.bench.script import run_script
from repro.core.od import outlying_degree


@pytest.mark.parametrize("k", [3, 10, 20])
def test_benchmark_od_kernel_vs_k(benchmark, miner_d10, workload_d10, k):
    X = workload_d10.dataset.X
    dims = tuple(range(10))
    value = benchmark(
        lambda: outlying_degree(miner_d10.backend_, X[0], k, dims, exclude=0)
    )
    assert value > 0


def main() -> None:
    run_script(E5_SPEC)


if __name__ == "__main__":
    main()

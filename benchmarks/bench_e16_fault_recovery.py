"""E16 — fault recovery: supervised shard execution under injected faults.

The fault-tolerant shard engine promises that worker failures cost
throughput, never correctness: a crashed worker is respawned onto its
existing shared-memory segment and the in-flight round replayed; a hung
worker trips the ``timeout_s`` reply deadline, is killed and respawned;
a shard whose every incarnation dies (``gen=any``) is served in-process
by the coordinator through the same sequential kernels. This benchmark
measures exactly those promises with the deterministic fault-injection
harness (:mod:`repro.testing.faults`): four arms — clean, crash, hang,
permanently dead — over the same traffic-shaped batch, every arm's
answers asserted element-wise identical to the sequential engine.

Gated measures are the identity flag and the supervision counters
(``respawns``/``timeouts``/``degraded_rounds`` — deterministic under
injection); ``recovery_ms`` (crash-arm minus clean-arm wall time) and
the per-arm throughputs are recorded for the trajectory but not gated,
since absolute latency is runner noise (and the hang arm's wall time is
bounded below by the 0.5 s deadline by construction).

The measurement lives in :data:`repro.bench.perf.E16_SPEC`; this script
is its classic entry point. ``python benchmarks/bench_e16_fault_recovery.py``
prints the full table; ``--fast`` runs the CI smoke grid; ``--save
[PATH]`` writes the canonical ``BENCH_e16.json`` snapshot (the
committed baseline the CI regression gate compares against — see
docs/benchmarking.md). The pytest-benchmark twins time a clean warm
pool against one recovering from an injected crash on a small fixed
batch.
"""

from __future__ import annotations

from repro.bench.perf import E16_SPEC
from repro.bench.script import run_script
from repro.bench.workloads import small_batch_setup
from repro.testing.faults import fault_env


# ----------------------------------------------------------------------
# pytest-benchmark twins (small fixed batch, regression tracking)
# ----------------------------------------------------------------------
def test_benchmark_fault_free_pool(benchmark):
    """Baseline: 64 traffic-shaped queries through a healthy 2-shard
    supervised pool (deadlines armed, nothing injected)."""
    with fault_env(None):
        miner, targets = small_batch_setup(timeout_s=5.0, backoff_s=0.01)
        miner.query_batch(targets, workers=2, shard="rows")  # spin up, unmeasured

        def run():
            miner.od_cache_.invalidate()
            return miner.query_batch(targets, workers=2, shard="rows")

        result = benchmark(run)
        miner.close()
    assert len(result) == 64
    assert result.stats.worker_respawns == 0


def test_benchmark_crash_recovery(benchmark):
    """The same batch with shard 0 crashing on its third round of every
    fresh pool: each measured round pays detection + respawn + replay."""
    with fault_env("crash:shard=0:round=3"):
        miner, targets = small_batch_setup(timeout_s=5.0, backoff_s=0.01)

        def run():
            miner.close()  # fresh pool: the gen-0 fault re-fires
            miner.od_cache_.invalidate()
            return miner.query_batch(targets, workers=2, shard="rows")

        result = benchmark(run)
        miner.close()
    assert len(result) == 64
    assert result.stats.worker_respawns == 1


# ----------------------------------------------------------------------
def main() -> None:
    run_script(E16_SPEC, default_tier="full")


if __name__ == "__main__":
    main()

"""E4 — effect of the distance threshold T.

Times threshold calibration (the quantile scan of full-space ODs);
``python benchmarks/bench_e4_threshold.py [--full]`` regenerates the E4
table (full grid: five quantiles).
"""

from __future__ import annotations

from repro.bench.experiments import E4_SPEC
from repro.bench.script import run_script
from repro.core.miner import calibrate_threshold


def test_benchmark_threshold_calibration(benchmark, miner_d10, workload_d10):
    X = workload_d10.dataset.X

    def calibrate():
        return calibrate_threshold(
            miner_d10.backend_, X, 5, quantile=0.99, sample=128, seed=0
        )

    threshold = benchmark.pedantic(calibrate, rounds=3, iterations=1)
    assert threshold > 0


def main() -> None:
    run_script(E4_SPEC)


if __name__ == "__main__":
    main()

"""The paper's medical application (Section 1).

"In a medical system, it is useful for the Doctors to identify from
voluminous medical data the subspaces in which a particular patient is
found abnormal and therefore a corresponding medical treatment can be
provided in a timely manner."

Mines a cohort of patients (ten vitals) for the abnormal vital
combinations of three cases, and contrasts the subspace answer with what
classic full-space detectors (top-n kNN distance, LOF) report.

Run:  python examples/medical_diagnosis.py
"""

from __future__ import annotations

from repro import HOSMiner
from repro.baselines import lof_scores, top_n_knn_outliers
from repro.data import load_patients, zscore


def main() -> None:
    cohort = load_patients()
    X = zscore(cohort.X)
    print(f"cohort: {cohort.n} patients x {cohort.d} vitals")
    print(f"vitals: {', '.join(cohort.feature_names)}\n")

    miner = HOSMiner(k=6, sample_size=8, threshold_quantile=0.99)
    miner.fit(X, feature_names=cohort.feature_names)

    for row in cohort.outlier_rows:
        result = miner.query_row(row)
        print(f"=== patient #{row} ===")
        print(result.explain())
        print()

    # What would a "space -> outliers" detector say? It can flag the
    # patients but cannot name the abnormal vital combination.
    print("--- contrast with full-space detectors ---")
    knn_rank = top_n_knn_outliers(X, k=6, n_outliers=5)
    print(f"top-5 kNN-distance outliers (full space): rows {list(knn_rank.rows)}")
    lof = lof_scores(X, k=10)
    top_lof = sorted(range(len(lof)), key=lambda r: -lof[r])[:5]
    print(f"top-5 LOF outliers           (full space): rows {top_lof}")
    print(
        "\nBoth rankings may surface the abnormal patients, but neither can "
        "say WHICH vitals are abnormal — that is exactly the 'outlier -> "
        "spaces' question HOS-Miner answers."
    )


if __name__ == "__main__":
    main()

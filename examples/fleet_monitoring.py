"""Continuous monitoring: dataset growth, batch detection, diagnostics.

A scenario the 2004 demo hints at (interactive exploration) built from
the library's extension surface: a "fleet" of sensor readings grows over
time; after each batch the operator asks for *all* current outliers and
drills into the strongest one with an OD profile and a threshold-free
subspace ranking.

Run:  python examples/fleet_monitoring.py
"""

from __future__ import annotations

import numpy as np

from repro import HOSMiner, ODEvaluator
from repro.core.profile import compute_od_profile
from repro.core.ranking import top_n_outlying_subspaces
from repro.data import make_gaussian_mixture


def main() -> None:
    rng = np.random.default_rng(2004)
    fleet = make_gaussian_mixture(n=600, d=7, n_clusters=2, seed=7)
    miner = HOSMiner(k=5, sample_size=8, threshold_quantile=0.995, adaptive=True)
    miner.fit(fleet.X)
    print(f"fitted on {fleet.n} readings, T = {miner.threshold_:.3f}")

    baseline = miner.detect_outliers()
    print(f"baseline sweep: {len(baseline)} outlier(s)\n")

    # --- a new batch arrives; two readings have gone wrong jointly -----
    batch = rng.normal(size=(40, 7)) + fleet.X[:40]
    batch[3, 1] += 9.0
    batch[3, 5] += 9.0                      # sensor pair (2, 6) failure
    batch[17, 4] += 12.0                    # single-sensor failure
    miner.extend(batch, refresh="none")     # trickle update: keep T, priors
    print(f"ingested a batch of {len(batch)}; dataset now {miner.backend_.size} rows")

    detections = miner.detect_outliers()
    print(f"post-batch sweep: {len(detections)} outlier(s), strongest first:")
    for row, result in detections[:4]:
        names = ", ".join(s.notation() for s in result.minimal[:4])
        print(f"  row {row}: minimal outlying subspaces {names}")

    # --- drill into the strongest detection ---------------------------
    row, result = detections[0]
    print(f"\n--- drill-down on row {row} ---")
    print(result.explain())
    evaluator = ODEvaluator(miner.backend_, miner.backend_.data[row],
                            miner.config.k, exclude=row)
    print()
    print(compute_od_profile(evaluator, miner.threshold_).render())
    print("\nthreshold-free ranking (normalised OD, <=2-d views):")
    for entry in top_n_outlying_subspaces(evaluator, n=5, max_level=2):
        print(f"  {entry.subspace.notation():<10} od={entry.od:8.3f}  "
              f"score={entry.score:8.3f}")


if __name__ == "__main__":
    main()

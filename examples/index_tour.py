"""A tour of the indexing substrate: linear scan vs R*-tree vs X-tree.

The paper's first module X-tree-indexes the dataset "to facilitate k-NN
search in every subspace". This example builds all three backends over
the same data, shows that subspace kNN answers are identical, compares
logical I/O costs, and demonstrates the X-tree's supernodes on uniform
high-dimensional data (the regime the X-tree was invented for).

Run:  python examples/index_tour.py
"""

from __future__ import annotations

import numpy as np

from repro import LinearScanIndex, RStarTree, XTree
from repro.data import make_planted_outliers, make_uniform_noise


def compare_backends(X: np.ndarray, label: str) -> None:
    print(f"--- {label}: n={X.shape[0]}, d={X.shape[1]} ---")
    backends = {
        "linear": LinearScanIndex(X),
        "rstar": RStarTree(X, max_entries=16),
        "xtree": XTree(X, max_entries=16),
    }
    rng = np.random.default_rng(0)
    query_rows = rng.choice(X.shape[0], size=20, replace=False)
    dims = tuple(range(0, X.shape[1], 2))  # an arbitrary subspace

    reference = None
    for name, backend in backends.items():
        backend.stats.reset()
        answers = [
            tuple(backend.knn(X[row], 5, dims, exclude=int(row))[0])
            for row in query_rows
        ]
        if reference is None:
            reference = answers
        assert answers == reference, f"{name} disagrees with the scan!"
        stats = backend.stats
        extra = ""
        if isinstance(backend, XTree):
            extra = (f", supernodes={backend.supernode_count()}"
                     f" (max {backend.max_supernode_blocks()} blocks)")
        print(
            f"{name:>7}: node accesses/query = "
            f"{stats.node_accesses / len(query_rows):6.1f}, "
            f"distance comps/query = "
            f"{stats.distance_computations / len(query_rows):7.1f}{extra}"
        )
    print("all three backends returned identical neighbours ✓\n")


def main() -> None:
    clustered = make_planted_outliers(n=2000, d=8, n_outliers=0, seed=1)
    compare_backends(clustered.X, "clustered data (trees shine)")

    uniform = make_uniform_noise(n=2000, d=16, seed=2)
    compare_backends(uniform.X, "uniform high-d data (X-tree builds supernodes)")

    print(
        "Note: on clustered, low-to-moderate-d data the trees cut logical\n"
        "costs several-fold; on uniform high-d data directory regions\n"
        "overlap so much that the X-tree widens nodes (supernodes) instead\n"
        "of splitting uselessly — exactly the behaviour its paper reports."
    )


if __name__ == "__main__":
    main()

"""The paper's athlete-training application (Section 1).

"In the case of designing a training program for an athlete, it is
critical to identify the specific subspace(s) in which an athlete
deviates from his or her teammates in the daily training performances."

This example mines a squad of athletes (eight named disciplines) for the
exact disciplines in which three athletes fall behind, then sketches the
targeted training program the paper envisions.

Run:  python examples/athlete_training.py
"""

from __future__ import annotations

from repro import HOSMiner
from repro.data import load_athletes, zscore


def main() -> None:
    squad = load_athletes()
    print(f"squad: {squad.n} athletes x {squad.d} disciplines")
    print(f"disciplines: {', '.join(squad.feature_names)}\n")

    # Disciplines live on wildly different scales (reaction time in
    # seconds vs strength scores) — normalise before mining.
    miner = HOSMiner(k=6, sample_size=8, threshold_quantile=0.99)
    miner.fit(zscore(squad.X), feature_names=squad.feature_names)
    print(f"threshold T = {miner.threshold_:.3f} "
          f"(99th percentile of full-space outlying degrees)\n")

    for row in squad.outlier_rows:
        result = miner.query_row(row)
        print(f"=== athlete #{row} ===")
        print(result.explain())
        if result.is_outlier:
            weak = sorted(
                {miner_name for s in result.minimal for miner_name in
                 (squad.feature_names[dim] for dim in s.dims)}
            )
            print(f"-> targeted training plan: drill {', '.join(weak)}")
        print()

    # Control: a regular squad member has no outlying subspace.
    regular = miner.query_row(37)
    print(f"=== athlete #37 (control) ===")
    print(regular.explain())


if __name__ == "__main__":
    main()

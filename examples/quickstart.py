"""Quickstart: find the outlying subspaces of a suspicious point.

Builds a small dataset with one point displaced in a known 2-dimensional
subspace, fits HOS-Miner, and prints which subspaces the system blames.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import HOSMiner
from repro.data import make_planted_outliers


def main() -> None:
    # 800 points in 8 dimensions; the first row is pushed far out of the
    # data mass inside one (randomly chosen) 2-d subspace.
    dataset = make_planted_outliers(
        n=800, d=8, n_outliers=1, subspace_dims=2, displacement=9.0, seed=42
    )
    planted = dataset.true_subspaces[0]
    print(f"dataset: {dataset}")
    print(f"ground truth: row 0 was displaced in subspace {planted.notation()}\n")

    # Fit the full pipeline: index, threshold calibration (T = 99.5th
    # percentile of full-space outlying degrees), sample-based learning.
    miner = HOSMiner(k=5, sample_size=10, threshold_quantile=0.995)
    miner.fit(dataset.X)
    print(f"calibrated threshold T = {miner.threshold_:.3f}")

    # Ask the system: in which subspaces is row 0 an outlier?
    result = miner.query_row(0)
    print(result.explain())
    print(
        f"\nsearch cost: {result.stats.od_evaluations} OD evaluations out of "
        f"{2 ** dataset.d - 1} subspaces "
        f"({result.stats.decided_without_evaluation} decided by pruning)"
    )

    # The planted subspace must lie in the (upward-closed) answer.
    assert result.is_outlying_in(planted), "planted subspace missed!"
    print(f"planted subspace {planted.notation()} confirmed outlying ✓")

    # A typical inlier, by contrast, has no outlying subspace at all.
    inlier = miner.query_row(123)
    print(f"\nrow 123 (a typical point): {inlier.explain()}")


if __name__ == "__main__":
    main()

"""Reproduce Figure 1 of the paper: one point, three 2-d views.

The paper motivates outlying-subspace detection with three 2-dimensional
views of the same high-dimensional dataset: point ``p`` is "clearly an
outlier" in the leftmost view and unremarkable in the other two. This
example regenerates that situation, renders each view as ASCII art, and
shows that HOS-Miner pinpoints exactly the outlying view.

Run:  python examples/figure1_views.py
"""

from __future__ import annotations

import numpy as np

from repro import HOSMiner, ODEvaluator, Subspace
from repro.data import make_figure1_data


def ascii_scatter(X: np.ndarray, dims: tuple[int, int], highlight: int,
                  width: int = 56, height: int = 18) -> str:
    """Render a 2-d view as text; the highlighted row prints as '*'."""
    xs, ys = X[:, dims[0]], X[:, dims[1]]
    x_low, x_high = xs.min(), xs.max()
    y_low, y_high = ys.min(), ys.max()
    grid = [[" "] * width for _ in range(height)]
    for row in range(X.shape[0]):
        col = int((xs[row] - x_low) / (x_high - x_low + 1e-12) * (width - 1))
        line = int((ys[row] - y_low) / (y_high - y_low + 1e-12) * (height - 1))
        cell = "*" if row == highlight else "x"
        if grid[height - 1 - line][col] != "*":
            grid[height - 1 - line][col] = cell
    return "\n".join("".join(line) for line in grid)


def main() -> None:
    dataset = make_figure1_data(n=400, seed=0)
    X = dataset.X
    views = [(0, 1), (2, 3), (4, 5)]

    miner = HOSMiner(k=5, sample_size=5, threshold_quantile=0.99).fit(X)
    evaluator = ODEvaluator(miner.backend_, X[0], miner.config.k, exclude=0)

    for dims in views:
        subspace = Subspace.from_dims(dims, dataset.d)
        od_value = evaluator.od(subspace.mask)
        verdict = "OUTLIER" if od_value >= miner.threshold_ else "ordinary"
        print(f"view {subspace.notation()}  --  OD(p) = {od_value:.2f} "
              f"(T = {miner.threshold_:.2f})  ->  p is {verdict}")
        print(ascii_scatter(X, dims, highlight=0))
        print()

    result = miner.query_row(0)
    print("HOS-Miner's answer for p:")
    print(result.explain())


if __name__ == "__main__":
    main()

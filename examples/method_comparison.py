"""Head-to-head: HOS-Miner vs the evolutionary method vs classic detectors.

Recreates, at example scale, the comparative study the paper's demo
promised (Section 4, part 3): the same planted-outlier dataset is given
to HOS-Miner, the Aggarwal–Yu evolutionary sparse-subspace search, and
the classic full-space detectors — and each method's answer is scored
against the planted ground truth.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro import HOSMiner
from repro.baselines import (
    EvolutionarySubspaceSearch,
    db_outliers,
    top_n_knn_outliers,
    top_n_lof_outliers,
)
from repro.bench import planted_recovery
from repro.data import make_planted_outliers


def main() -> None:
    dataset = make_planted_outliers(
        n=1200, d=8, n_outliers=5, subspace_dims=2, displacement=8.0, seed=99
    )
    X = dataset.X
    planted_rows = dataset.outlier_rows
    print(f"{dataset}; planted rows {planted_rows}")
    for row in planted_rows:
        print(f"  row {row}: planted subspace {dataset.true_subspaces[row].notation()}")
    print()

    # --- HOS-Miner: the "outlier -> spaces" answer --------------------
    miner = HOSMiner(k=5, sample_size=10, threshold_quantile=0.995, adaptive=True)
    miner.fit(X)
    print("HOS-Miner (outlier -> spaces):")
    for row in planted_rows:
        result = miner.query_row(row)
        recovery = planted_recovery(result.minimal, dataset.true_subspaces[row])
        verdict = "exact" if recovery.exact else (
            "contained" if recovery.contained else
            ("covered" if recovery.covered else "missed")
        )
        minimal = ", ".join(s.notation() for s in result.minimal[:4]) or "(none)"
        print(f"  row {row}: minimal = {minimal}  [{verdict}]")
    print()

    # --- Evolutionary sparse-subspace search (space -> outliers) ------
    evolutionary = EvolutionarySubspaceSearch(
        phi=4, target_dims=2, population=60, generations=40, best_cubes=30, seed=0
    ).fit(X)
    print("Aggarwal-Yu evolutionary search (space -> outliers):")
    print(f"  flags {len(evolutionary.outlier_rows_)} points via "
          f"{len(evolutionary.best_cubes_)} sparse cubes")
    for row in planted_rows:
        subspaces = evolutionary.subspaces_for_point(row)
        names = ", ".join(s.notation() for s in subspaces) or "(not flagged)"
        print(f"  row {row}: {names}")
    print()

    # --- Classic full-space detectors ---------------------------------
    knn_rank = top_n_knn_outliers(X, k=5, n_outliers=10)
    lof_rows, _ = top_n_lof_outliers(X, k=10, n_outliers=10)
    db_flags = db_outliers(X, pi=0.99, radius=6.0)
    print("classic full-space detectors (can rank, cannot localise):")
    print(f"  kNN-dist top-10 rows : {sorted(knn_rank.rows)}")
    print(f"  LOF top-10 rows      : {sorted(lof_rows)}")
    print(f"  DB(0.99, 6.0) flags  : {sorted(int(r) for r in db_flags.nonzero()[0])[:12]}")
    hits = len(set(planted_rows) & set(knn_rank.rows))
    print(f"\nkNN-dist finds {hits}/{len(planted_rows)} planted rows but names "
          "no subspace; HOS-Miner names the subspace for every one.")


if __name__ == "__main__":
    main()

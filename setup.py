"""Legacy setup shim.

The execution environment is offline and ships setuptools without the
``wheel`` package, so PEP 517/660 editable installs (which build an
editable wheel) are unavailable. This shim lets
``pip install -e . --no-build-isolation`` fall back to the classic
``setup.py develop`` path. All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
